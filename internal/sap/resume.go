package sap

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"cellbricks/internal/codec"
	"cellbricks/internal/nas"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
)

// Session resumption: the SAP fast path for re-attachment.
//
// A full SAP handshake costs the broker two signature verifications, a
// box decryption, two seals, and two signatures — fine for the first
// attach, ruinous during a flash crowd of UEs re-attaching to cells they
// already hold grants for. Resumption replaces the asymmetric crypto
// with a handful of HMAC-SHA256 computations over the shared secret ss
// that the full handshake already distributed to all three parties
// (UE, serving bTelco, broker):
//
//	UE      → bTelco: ResumeReq{uref, idT, nonce, macU}
//	bTelco  → broker: ResumeReq{..., macT}          (co-signs the forward)
//	broker  → both:   ResumeResp{uref', params, macU', macT'}
//
// The broker checks both MACs against the grant it recorded under uref,
// re-runs the authorization policy (a quarantined or demoted bTelco is
// denied exactly as a full attach would be), marks uref consumed
// (single-use: a replayed ResumeReq is refused), and derives the
// successor secret and reference deterministically from (ss, nonce) —
// all three parties compute ss' and uref' locally, so the response
// carries only confirmation MACs, nothing sealed.
//
// Trust bounds, stated plainly: ss is shared three ways, so the serving
// bTelco could forge its own UE's resume — but that only re-attaches the
// UE to itself under the original grant's terms, and billing still
// requires the UE-attested counter it cannot forge. An off-path attacker
// without ss can neither resume nor link uref to uref'. Resumption pins
// the ORIGINAL grant's terms and price; a bTelco wanting new terms must
// run the full handshake. Forward secrecy is weaker than the full path
// (compromise of ss exposes the whole derivation chain), which is why
// the chain re-keys through HMAC with a fresh nonce each hop and any
// party may fall back to a full attach at will.

// ErrResumeMAC reports a resume message whose MAC does not verify.
var ErrResumeMAC = errors.New("sap: resume MAC invalid")

// ResumeReq is the fast-path re-attach request for an existing grant.
type ResumeReq struct {
	URef  string          // session reference from the prior grant
	IDT   string          // serving bTelco (must match the grant)
	Nonce [NonceSize]byte // fresh per resume; drives ss'/uref' derivation
	MACU  []byte          // UE's HMAC over the request
	MACT  []byte          // serving bTelco's HMAC over the request
}

// ResumeResp is the broker's answer. On a grant, URef/Params carry the
// successor session and both MACs confirm the broker knows ss; denials
// are unauthenticated, exactly like full-handshake denials.
type ResumeResp struct {
	Granted    bool
	Cause      string
	TelcoScore float64
	URef       string // successor session reference (empty on denial)
	Params     qos.Params
	MACU       []byte // broker confirmation for the UE
	MACT       []byte // broker confirmation for the bTelco
}

// resumeKey derives a role-separated MAC key from the session secret.
func resumeKey(ss nas.MasterKey, label string) []byte {
	m := hmac.New(sha256.New, ss[:])
	m.Write([]byte(label))
	return m.Sum(nil)
}

// resumeReqMAC computes the request MAC under a role key.
func resumeReqMAC(key []byte, uref, idT string, nonce [NonceSize]byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write([]byte("req\x00"))
	m.Write([]byte(uref))
	m.Write([]byte{0})
	m.Write([]byte(idT))
	m.Write([]byte{0})
	m.Write(nonce[:])
	return m.Sum(nil)
}

// resumeRespMAC computes the grant-confirmation MAC under a role key.
func resumeRespMAC(key []byte, newURef string, nonce [NonceSize]byte, params qos.Params) []byte {
	w := codec.NewWriter(64)
	w.String(newURef)
	w.Bytes(nonce[:])
	w.Byte(byte(params.QCI))
	w.Uint64(params.DLAmbrBps)
	w.Uint64(params.ULAmbrBps)
	m := hmac.New(sha256.New, key)
	m.Write([]byte("resp\x00"))
	m.Write(w.Out())
	return m.Sum(nil)
}

// deriveResumeSecret computes the successor secret ss' = HMAC(ss,
// "next" || nonce). All three parties derive it locally.
func deriveResumeSecret(ss nas.MasterKey, nonce [NonceSize]byte) nas.MasterKey {
	m := hmac.New(sha256.New, ss[:])
	m.Write([]byte("next\x00"))
	m.Write(nonce[:])
	var out nas.MasterKey
	copy(out[:], m.Sum(nil))
	return out
}

// deriveResumeURef computes the successor session reference — the same
// 24-hex-char shape newURef mints, but derived so UE, bTelco and broker
// agree on it without the broker shipping it sealed.
func deriveResumeURef(ss nas.MasterKey, nonce [NonceSize]byte) string {
	m := hmac.New(sha256.New, ss[:])
	m.Write([]byte("ref\x00"))
	m.Write(nonce[:])
	return hex.EncodeToString(m.Sum(nil)[:12])
}

// ResumeSession is the UE-side ticket cached after a successful full
// attach (or prior resume) that enables the fast path back onto the same
// bTelco.
type ResumeSession struct {
	IDT  string
	URef string
	SS   nas.MasterKey
}

// NewResumeRequest builds the UE half of a fast-path re-attach: a fresh
// nonce plus the UE's MAC. The serving bTelco adds MACT via
// ForwardResume.
func (s *ResumeSession) NewResumeRequest() (*ResumeReq, error) {
	nonce, err := pki.NewNonce()
	if err != nil {
		return nil, err
	}
	req := &ResumeReq{URef: s.URef, IDT: s.IDT, Nonce: nonce}
	req.MACU = resumeReqMAC(resumeKey(s.SS, "cb-resume-u"), req.URef, req.IDT, req.Nonce)
	return req, nil
}

// HandleResumeResponse verifies the broker's confirmation MAC, checks the
// derived successor reference, and returns the successor ticket plus the
// new NAS master key. On a denial it returns ErrDenied wrapped with the
// cause; the caller should drop the ticket and fall back to a full
// attach.
func (s *ResumeSession) HandleResumeResponse(req *ResumeReq, resp *ResumeResp) (*ResumeSession, nas.MasterKey, error) {
	var zero nas.MasterKey
	if req == nil || resp == nil {
		return nil, zero, ErrBadRequest
	}
	if !resp.Granted {
		return nil, zero, fmt.Errorf("%w: %s", ErrDenied, resp.Cause)
	}
	want := resumeRespMAC(resumeKey(s.SS, "cb-resume-u"), resp.URef, req.Nonce, resp.Params)
	if !hmac.Equal(want, resp.MACU) {
		return nil, zero, ErrResumeMAC
	}
	if resp.URef != deriveResumeURef(s.SS, req.Nonce) {
		return nil, zero, fmt.Errorf("%w: derived session reference mismatch", ErrBadRequest)
	}
	ss2 := deriveResumeSecret(s.SS, req.Nonce)
	return &ResumeSession{IDT: s.IDT, URef: resp.URef, SS: ss2}, ss2, nil
}

// ForwardResume is the serving bTelco's half: verify the UE's MAC under
// the session secret it holds for uref (refusing forwards for sessions
// it does not serve) and co-sign the request with its own MAC.
func (t *TelcoState) ForwardResume(req *ResumeReq, ss nas.MasterKey) error {
	if req == nil {
		return ErrBadRequest
	}
	if req.IDT != t.IDT {
		return ErrWrongTelco
	}
	if !hmac.Equal(resumeReqMAC(resumeKey(ss, "cb-resume-u"), req.URef, req.IDT, req.Nonce), req.MACU) {
		return ErrResumeMAC
	}
	req.MACT = resumeReqMAC(resumeKey(ss, "cb-resume-t"), req.URef, req.IDT, req.Nonce)
	return nil
}

// AcceptResume is the serving bTelco's response handler: verify the
// broker's confirmation MAC, derive the successor secret, and return the
// Grant for the resumed session (original params echoed by the broker).
func (t *TelcoState) AcceptResume(req *ResumeReq, resp *ResumeResp, ss nas.MasterKey) (*Grant, error) {
	if req == nil || resp == nil {
		return nil, ErrBadRequest
	}
	if !resp.Granted {
		return nil, fmt.Errorf("%w: %s", ErrDenied, resp.Cause)
	}
	want := resumeRespMAC(resumeKey(ss, "cb-resume-t"), resp.URef, req.Nonce, resp.Params)
	if !hmac.Equal(want, resp.MACT) {
		return nil, ErrResumeMAC
	}
	return &Grant{URef: resp.URef, SS: deriveResumeSecret(ss, req.Nonce), Params: resp.Params}, nil
}

// VerifyResumeReq is the broker-side MAC check: both the UE's and the
// serving bTelco's MAC must verify under the grant's session secret.
func VerifyResumeReq(req *ResumeReq, ss nas.MasterKey) error {
	if req == nil {
		return ErrBadRequest
	}
	if !hmac.Equal(resumeReqMAC(resumeKey(ss, "cb-resume-u"), req.URef, req.IDT, req.Nonce), req.MACU) {
		return fmt.Errorf("%w (UE)", ErrResumeMAC)
	}
	if !hmac.Equal(resumeReqMAC(resumeKey(ss, "cb-resume-t"), req.URef, req.IDT, req.Nonce), req.MACT) {
		return fmt.Errorf("%w (bTelco)", ErrResumeMAC)
	}
	return nil
}

// GrantResume builds the broker's granting response: derive the
// successor (ss', uref') from the grant secret and the request nonce and
// confirm both derivations to UE and bTelco with role-keyed MACs.
// Returns the response plus (ss', uref') for the broker's own grant
// bookkeeping.
func GrantResume(req *ResumeReq, ss nas.MasterKey, params qos.Params, score float64) (*ResumeResp, nas.MasterKey, string) {
	ss2 := deriveResumeSecret(ss, req.Nonce)
	uref2 := deriveResumeURef(ss, req.Nonce)
	resp := &ResumeResp{Granted: true, TelcoScore: score, URef: uref2, Params: params}
	resp.MACU = resumeRespMAC(resumeKey(ss, "cb-resume-u"), uref2, req.Nonce, params)
	resp.MACT = resumeRespMAC(resumeKey(ss, "cb-resume-t"), uref2, req.Nonce, params)
	return resp, ss2, uref2
}

// DenyResume builds an (unauthenticated, like full-handshake denials)
// denying response.
func DenyResume(cause string, score float64) *ResumeResp {
	return &ResumeResp{Granted: false, Cause: cause, TelcoScore: score}
}

// Marshal encodes the request for NAS/wire carriage.
func (r *ResumeReq) Marshal() []byte {
	w := codec.NewWriter(128)
	w.String(r.URef)
	w.String(r.IDT)
	w.Bytes(r.Nonce[:])
	w.Bytes(r.MACU)
	w.Bytes(r.MACT)
	return w.Out()
}

// UnmarshalResumeReq decodes a request.
func UnmarshalResumeReq(b []byte) (*ResumeReq, error) {
	r := codec.NewReader(b)
	req := &ResumeReq{URef: r.String(), IDT: r.String()}
	nonce := r.BytesCopy()
	req.MACU = r.BytesCopy()
	req.MACT = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: resumeReq: %v", ErrBadRequest, err)
	}
	if len(nonce) != NonceSize {
		return nil, fmt.Errorf("%w: resumeReq nonce length %d", ErrBadRequest, len(nonce))
	}
	copy(req.Nonce[:], nonce)
	return req, nil
}

// Marshal encodes the response for NAS/wire carriage.
func (r *ResumeResp) Marshal() []byte {
	w := codec.NewWriter(160)
	w.Bool(r.Granted)
	w.String(r.Cause)
	w.Float64(r.TelcoScore)
	w.String(r.URef)
	w.Byte(byte(r.Params.QCI))
	w.Uint64(r.Params.DLAmbrBps)
	w.Uint64(r.Params.ULAmbrBps)
	w.Bytes(r.MACU)
	w.Bytes(r.MACT)
	return w.Out()
}

// UnmarshalResumeResp decodes a response.
func UnmarshalResumeResp(b []byte) (*ResumeResp, error) {
	r := codec.NewReader(b)
	resp := &ResumeResp{
		Granted:    r.Bool(),
		Cause:      r.String(),
		TelcoScore: r.Float64(),
		URef:       r.String(),
	}
	resp.Params.QCI = qos.QCI(r.Byte())
	resp.Params.DLAmbrBps = r.Uint64()
	resp.Params.ULAmbrBps = r.Uint64()
	resp.MACU = r.BytesCopy()
	resp.MACT = r.BytesCopy()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("%w: resumeResp: %v", ErrBadRequest, err)
	}
	return resp, nil
}

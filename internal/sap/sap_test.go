package sap

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
)

// fixture wires a UE, a certified bTelco, and a broker with a shared CA.
type fixture struct {
	ue     *UEState
	telco  *TelcoState
	broker *BrokerState
	ca     *pki.CA
	now    time.Time
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	now := time.Unix(1_750_000_000, 0)
	ca, err := pki.NewCAFromSeed("root-ca", bytes.Repeat([]byte{77}, 32))
	if err != nil {
		t.Fatal(err)
	}
	brokerKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{1}, 32))
	if err != nil {
		t.Fatal(err)
	}
	telcoKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{2}, 32))
	if err != nil {
		t.Fatal(err)
	}
	ueKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{3}, 32))
	if err != nil {
		t.Fatal(err)
	}

	broker := NewBrokerState("broker.example", brokerKey, ca.Public(), nil, func() time.Time { return now })
	idU := broker.RegisterUser(ueKey.Public())

	telcoCert := ca.Issue("btelco-1", "btelco", telcoKey.Public(), now.Add(-time.Hour), now.Add(24*time.Hour))
	telco := &TelcoState{
		IDT:  "btelco-1",
		Key:  telcoKey,
		Cert: telcoCert,
		Terms: ServiceTerms{
			Cap:             qos.DefaultCapability(),
			LawfulIntercept: false,
			PricePerGB:      2.5,
		},
	}
	ue := &UEState{IDU: idU, IDB: "broker.example", Key: ueKey, BrokerPub: brokerKey.Public()}
	return &fixture{ue: ue, telco: telco, broker: broker, ca: ca, now: now}
}

// runAttach executes the full SAP exchange, returning everything each
// party derived.
func (f *fixture) runAttach(t *testing.T) (ueSS, telcoSS [32]byte, grant *Grant, rec *GrantRecord) {
	t.Helper()
	reqU, pending, err := f.ue.NewAttachRequest(f.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise wire encoding on every leg.
	reqU2, err := UnmarshalAuthReqU(reqU.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := f.telco.ForwardRequest(reqU2)
	if err != nil {
		t.Fatal(err)
	}
	reqT2, err := UnmarshalAuthReqT(reqT.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	resp, grantRec, err := f.broker.HandleRequest(reqT2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Granted {
		t.Fatalf("denied: %s", resp.Cause)
	}
	resp2, err := UnmarshalAuthResp(resp.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	g, respU, err := f.telco.HandleResponse(f.broker.Key.Public(), resp2)
	if err != nil {
		t.Fatal(err)
	}
	respU2, err := UnmarshalAuthRespU(respU.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ss, uref, err := f.ue.HandleResponse(pending, respU2)
	if err != nil {
		t.Fatal(err)
	}
	if uref != g.URef {
		t.Fatalf("UE learned URef %q, bTelco got %q", uref, g.URef)
	}
	return ss, g.SS, g, grantRec
}

func TestSAPEndToEnd(t *testing.T) {
	f := newFixture(t)
	ueSS, telcoSS, grant, rec := f.runAttach(t)
	if ueSS != telcoSS {
		t.Fatal("UE and bTelco derived different shared secrets")
	}
	if rec.SS != ueSS {
		t.Fatal("broker record holds a different ss")
	}
	if grant.URef == "" || grant.URef != rec.URef {
		t.Fatalf("URef mismatch: grant=%q rec=%q", grant.URef, rec.URef)
	}
	if rec.IDU != f.ue.IDU || rec.IDT != f.telco.IDT {
		t.Fatalf("grant record identities wrong: %+v", rec)
	}
	if err := grant.Params.Validate(f.telco.Terms.Cap); err != nil {
		t.Fatalf("granted QoS outside capability: %v", err)
	}
}

func TestSAPTelcoNeverSeesUserIdentity(t *testing.T) {
	f := newFixture(t)
	reqU, _, err := f.ue.NewAttachRequest(f.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	wire := reqU.Marshal()
	if bytes.Contains(wire, []byte(f.ue.IDU)) {
		t.Fatal("cleartext idU visible to bTelco (IMSI-catcher exposure)")
	}
	// The grant the bTelco gets back must carry the opaque URef, not idU.
	_, _, grant, _ := f.runAttach(t)
	if grant.URef == f.ue.IDU {
		t.Fatal("grant leaks the real user identifier")
	}
}

func TestSAPDistinctAttachesFreshSecrets(t *testing.T) {
	f := newFixture(t)
	a, _, _, _ := f.runAttach(t)
	b, _, _, _ := f.runAttach(t)
	if a == b {
		t.Fatal("two attaches produced the same ss")
	}
}

func TestSAPReplayRejected(t *testing.T) {
	f := newFixture(t)
	reqU, _, err := f.ue.NewAttachRequest(f.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := f.telco.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	resp1, _, err := f.broker.HandleRequest(reqT)
	if err != nil || !resp1.Granted {
		t.Fatalf("first request: %v granted=%v", err, resp1.Granted)
	}
	resp2, rec2, err := f.broker.HandleRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Granted || rec2 != nil {
		t.Fatal("replayed request granted")
	}
	if !strings.Contains(resp2.Cause, "replay") {
		t.Fatalf("cause = %q, want replay", resp2.Cause)
	}
}

func TestSAPRequestBoundToTelco(t *testing.T) {
	f := newFixture(t)
	// A second certified bTelco captures the UE's request destined for
	// btelco-1 and tries to forward it as its own.
	evilKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{9}, 32))
	evilCert := f.ca.Issue("btelco-evil", "btelco", evilKey.Public(), f.now.Add(-time.Hour), f.now.Add(time.Hour))
	evil := &TelcoState{IDT: "btelco-evil", Key: evilKey, Cert: evilCert, Terms: f.telco.Terms}

	reqU, _, err := f.ue.NewAttachRequest(f.telco.IDT) // bound to btelco-1
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := evil.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := f.broker.HandleRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("request bound to btelco-1 was granted to btelco-evil")
	}
	if !strings.Contains(resp.Cause, "mismatch") {
		t.Fatalf("cause = %q", resp.Cause)
	}
}

func TestSAPUncertifiedTelcoRejected(t *testing.T) {
	f := newFixture(t)
	otherCA, _ := pki.NewCAFromSeed("rogue-ca", bytes.Repeat([]byte{66}, 32))
	key, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{10}, 32))
	cert := otherCA.Issue("btelco-x", "btelco", key.Public(), f.now.Add(-time.Hour), f.now.Add(time.Hour))
	rogue := &TelcoState{IDT: "btelco-x", Key: key, Cert: cert, Terms: f.telco.Terms}

	reqU, _, _ := f.ue.NewAttachRequest("btelco-x")
	reqT, _ := rogue.ForwardRequest(reqU)
	resp, _, err := f.broker.HandleRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted {
		t.Fatal("bTelco certified by unknown CA was granted")
	}
}

func TestSAPExpiredCertRejected(t *testing.T) {
	f := newFixture(t)
	key, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{11}, 32))
	cert := f.ca.Issue("btelco-old", "btelco", key.Public(), f.now.Add(-48*time.Hour), f.now.Add(-24*time.Hour))
	old := &TelcoState{IDT: "btelco-old", Key: key, Cert: cert, Terms: f.telco.Terms}
	reqU, _, _ := f.ue.NewAttachRequest("btelco-old")
	reqT, _ := old.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("expired certificate accepted")
	}
}

func TestSAPWrongRoleCertRejected(t *testing.T) {
	f := newFixture(t)
	key, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{12}, 32))
	cert := f.ca.Issue("some-broker", "broker", key.Public(), f.now.Add(-time.Hour), f.now.Add(time.Hour))
	imposter := &TelcoState{IDT: "some-broker", Key: key, Cert: cert, Terms: f.telco.Terms}
	reqU, _, _ := f.ue.NewAttachRequest("some-broker")
	reqT, _ := imposter.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("broker-role certificate accepted for a bTelco")
	}
}

func TestSAPUnknownUserRejected(t *testing.T) {
	f := newFixture(t)
	strangerKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{13}, 32))
	stranger := &UEState{
		IDU:       strangerKey.Public().Digest(),
		IDB:       f.broker.IDB,
		Key:       strangerKey,
		BrokerPub: f.broker.Key.Public(),
	}
	reqU, _, _ := stranger.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("unknown user granted")
	}
}

func TestSAPRevokedUserRejected(t *testing.T) {
	f := newFixture(t)
	f.broker.RevokeUser(f.ue.IDU)
	reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("revoked user granted")
	}
}

func TestSAPForgedUESignatureRejected(t *testing.T) {
	f := newFixture(t)
	reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqU.Sig[0] ^= 1
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("forged UE signature granted")
	}
}

func TestSAPTamperedTermsRejected(t *testing.T) {
	f := newFixture(t)
	reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	// Man-in-the-middle bumps the advertised price after signing.
	reqT.Terms.PricePerGB = 0.01
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("tampered terms accepted (signature should cover terms)")
	}
}

func TestSAPDenialByPolicy(t *testing.T) {
	f := newFixture(t)
	f.broker.Policy = AuthorizerFunc(func(idU, idT string, _ ServiceTerms) (qos.Params, error) {
		return qos.Params{}, errors.New("bTelco reputation too low")
	})
	reqU, pending, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, rec, err := f.broker.HandleRequest(reqT)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Granted || rec != nil {
		t.Fatal("policy denial ignored")
	}
	if _, _, err := f.telco.HandleResponse(f.broker.Key.Public(), resp); !errors.Is(err, ErrDenied) {
		t.Fatalf("telco err=%v, want ErrDenied", err)
	}
	_ = pending
}

func TestSAPUERejectsForgedResponse(t *testing.T) {
	f := newFixture(t)
	reqU, pending, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	_, respU, err := f.telco.HandleResponse(f.broker.Key.Public(), resp)
	if err != nil {
		t.Fatal(err)
	}
	forged := &AuthRespU{Sealed: respU.Sealed, Sig: append([]byte(nil), respU.Sig...)}
	forged.Sig[2] ^= 0xFF
	if _, _, err := f.ue.HandleResponse(pending, forged); err == nil {
		t.Fatal("UE accepted forged broker signature")
	}
}

func TestSAPUERejectsMismatchedNonce(t *testing.T) {
	f := newFixture(t)
	// Run two attaches and cross-wire the responses.
	reqU1, pending1, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT1, _ := f.telco.ForwardRequest(reqU1)
	resp1, _, _ := f.broker.HandleRequest(reqT1)
	_, respU1, err := f.telco.HandleResponse(f.broker.Key.Public(), resp1)
	if err != nil {
		t.Fatal(err)
	}
	_, pending2, _ := f.ue.NewAttachRequest(f.telco.IDT)
	if _, _, err := f.ue.HandleResponse(pending2, respU1); !errors.Is(err, ErrNonceMismatch) {
		t.Fatalf("err=%v, want ErrNonceMismatch", err)
	}
	// Correct pairing still succeeds.
	if _, _, err := f.ue.HandleResponse(pending1, respU1); err != nil {
		t.Fatal(err)
	}
}

func TestSAPTelcoRejectsGrantForOtherTelco(t *testing.T) {
	f := newFixture(t)
	reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)

	otherKey, _ := pki.KeyPairFromSeed(bytes.Repeat([]byte{14}, 32))
	otherCert := f.ca.Issue("btelco-2", "btelco", otherKey.Public(), f.now.Add(-time.Hour), f.now.Add(time.Hour))
	other := &TelcoState{IDT: "btelco-2", Key: otherKey, Cert: otherCert, Terms: f.telco.Terms}
	if _, _, err := other.HandleResponse(f.broker.Key.Public(), resp); err == nil {
		t.Fatal("bTelco-2 accepted a grant sealed for bTelco-1")
	}
}

func TestSAPWrongBrokerAddress(t *testing.T) {
	f := newFixture(t)
	reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqU.IDB = "other-broker.example"
	reqT, _ := f.telco.ForwardRequest(reqU)
	resp, _, _ := f.broker.HandleRequest(reqT)
	if resp.Granted {
		t.Fatal("request addressed to another broker was granted")
	}
}

func TestNonceCacheEviction(t *testing.T) {
	c := newNonceCache(4)
	mk := func(b byte) [NonceSize]byte {
		var n [NonceSize]byte
		n[0] = b
		return n
	}
	for i := byte(0); i < 4; i++ {
		if !c.add(mk(i)) {
			t.Fatalf("fresh nonce %d rejected", i)
		}
	}
	if c.add(mk(0)) {
		t.Fatal("duplicate accepted")
	}
	// Push one more: the oldest (0) is evicted and becomes acceptable
	// again (bounded-memory tradeoff).
	if !c.add(mk(4)) {
		t.Fatal("fresh nonce 4 rejected")
	}
	if !c.add(mk(0)) {
		t.Fatal("evicted nonce should be accepted again")
	}
}

func TestAuthVecCodecRoundTrip(t *testing.T) {
	v := AuthVec{IDU: "u1", IDB: "b1", IDT: "t1", Nonce: [16]byte{1, 2, 3}}
	var got AuthVec
	if err := got.unmarshal(v.marshal()); err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("roundtrip: %+v != %+v", got, v)
	}
}

func TestAuthReqTCodecRejectsTruncation(t *testing.T) {
	f := newFixture(t)
	reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
	reqT, _ := f.telco.ForwardRequest(reqU)
	wire := reqT.Marshal()
	for _, cut := range []int{1, 5, len(wire) / 2, len(wire) - 1} {
		if _, err := UnmarshalAuthReqT(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// Property: the terms codec round-trips arbitrary capability shapes.
func TestPropertyTermsCodec(t *testing.T) {
	f := func(qcis []byte, dl, ul uint64, gbr, li bool, price float64) bool {
		if len(qcis) > 32 {
			qcis = qcis[:32]
		}
		terms := ServiceTerms{LawfulIntercept: li, PricePerGB: price}
		terms.Cap.MaxDLAmbrBps = dl
		terms.Cap.MaxULAmbrBps = ul
		terms.Cap.GBRSupported = gbr
		for _, q := range qcis {
			terms.Cap.QCIs = append(terms.Cap.QCIs, qos.QCI(q))
		}
		reqT := &AuthReqT{IDT: "t", Terms: terms}
		got, err := UnmarshalAuthReqT((&AuthReqT{ReqU: AuthReqU{IDB: "b"}, IDT: "t", Terms: terms}).Marshal())
		if err != nil {
			return false
		}
		_ = reqT
		if got.Terms.Cap.MaxDLAmbrBps != dl || got.Terms.Cap.MaxULAmbrBps != ul ||
			got.Terms.Cap.GBRSupported != gbr || got.Terms.LawfulIntercept != li {
			return false
		}
		if price == price && got.Terms.PricePerGB != price { // NaN-safe
			return false
		}
		if len(got.Terms.Cap.QCIs) != len(terms.Cap.QCIs) {
			return false
		}
		for i := range got.Terms.Cap.QCIs {
			if got.Terms.Cap.QCIs[i] != terms.Cap.QCIs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: no single-region corruption of a valid signed request can
// yield a grant — mutated requests either fail to parse or are denied.
func TestPropertyMutatedRequestNeverGranted(t *testing.T) {
	f := newFixture(t)
	reqU, _, err := f.ue.NewAttachRequest(f.telco.IDT)
	if err != nil {
		t.Fatal(err)
	}
	reqT, err := f.telco.ForwardRequest(reqU)
	if err != nil {
		t.Fatal(err)
	}
	wire := reqT.Marshal()

	check := func(offset uint16, val byte) bool {
		mut := append([]byte(nil), wire...)
		i := int(offset) % len(mut)
		if mut[i] == val {
			val ^= 0xFF
		}
		mut[i] = val
		parsed, err := UnmarshalAuthReqT(mut)
		if err != nil {
			return true // failed to parse: safe
		}
		resp, rec, err := f.broker.HandleRequest(parsed)
		if err != nil {
			return true // processing error: safe
		}
		// A mutation that leaves all authenticated fields bit-identical
		// can still verify (e.g. flipping a length byte that reassembles
		// identically); a grant is only a violation if some protected
		// content actually changed.
		if resp.Granted {
			return bytes.Equal(parsed.Marshal(), wire) && rec != nil
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: authRespU sealed for one UE can never be accepted by another.
func TestPropertyResponseNotTransferable(t *testing.T) {
	f := newFixture(t)
	// Register a second user.
	otherKey, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{111}, 32))
	if err != nil {
		t.Fatal(err)
	}
	otherID := f.broker.RegisterUser(otherKey.Public())
	other := &UEState{IDU: otherID, IDB: f.broker.IDB, Key: otherKey, BrokerPub: f.broker.Key.Public()}

	for i := 0; i < 10; i++ {
		reqU, _, _ := f.ue.NewAttachRequest(f.telco.IDT)
		reqT, _ := f.telco.ForwardRequest(reqU)
		resp, _, err := f.broker.HandleRequest(reqT)
		if err != nil || !resp.Granted {
			t.Fatal("setup attach failed")
		}
		_, respU, err := f.telco.HandleResponse(f.broker.Key.Public(), resp)
		if err != nil {
			t.Fatal(err)
		}
		// The other UE (with its own pending state) must reject it.
		_, otherPending, _ := other.NewAttachRequest(f.telco.IDT)
		if _, _, err := other.HandleResponse(otherPending, respU); err == nil {
			t.Fatal("authRespU accepted by a different UE")
		}
	}
}

// Package pki provides the public-key identity substrate CellBricks
// replaces SIM shared secrets with (§4.1 of the paper): Ed25519 signing
// identities, a minimal certificate authority for broker and bTelco keys,
// and "sealed boxes" (ephemeral X25519 ECDH + AES-256-GCM) for
// encrypting-to-a-public-key, used by the SAP protocol and the verifiable
// billing reports.
//
// UE keys are issued by the UE's broker and need no certificates (the
// broker recognizes its own issuance); broker and bTelco keys carry CA
// certificates distributed as in standard Internet PKI.
package pki

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Errors returned by verification and sealing operations.
var (
	ErrBadSignature   = errors.New("pki: signature verification failed")
	ErrBadCertificate = errors.New("pki: certificate verification failed")
	ErrExpired        = errors.New("pki: certificate expired")
	ErrDecrypt        = errors.New("pki: sealed box authentication failed")
	ErrShortInput     = errors.New("pki: input too short")
)

// KeyPair is an Ed25519 signing identity plus the matching X25519 key used
// for sealed-box decryption. The X25519 key is derived deterministically
// from the Ed25519 seed so that a single stored secret suffices (as a SIM
// would hold).
type KeyPair struct {
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey

	boxPriv *ecdh.PrivateKey
	boxPub  []byte
}

// GenerateKeyPair creates a fresh identity using crypto/rand.
func GenerateKeyPair() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate: %w", err)
	}
	return newKeyPair(pub, priv)
}

// KeyPairFromSeed creates a deterministic identity from a 32-byte seed.
// Intended for tests and reproducible experiments.
func KeyPairFromSeed(seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("pki: seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	return newKeyPair(priv.Public().(ed25519.PublicKey), priv)
}

func newKeyPair(pub ed25519.PublicKey, priv ed25519.PrivateKey) (*KeyPair, error) {
	// Derive the X25519 key from the Ed25519 seed via HMAC-SHA256 with a
	// domain-separation label.
	mac := hmac.New(sha256.New, priv.Seed())
	mac.Write([]byte("cellbricks-box-v1"))
	boxSeed := mac.Sum(nil)
	boxPriv, err := ecdh.X25519().NewPrivateKey(clampX25519(boxSeed))
	if err != nil {
		return nil, fmt.Errorf("pki: derive box key: %w", err)
	}
	return &KeyPair{
		Pub:     pub,
		priv:    priv,
		boxPriv: boxPriv,
		boxPub:  boxPriv.PublicKey().Bytes(),
	}, nil
}

func clampX25519(k []byte) []byte {
	out := make([]byte, 32)
	copy(out, k[:32])
	out[0] &= 248
	out[31] &= 127
	out[31] |= 64
	return out
}

// Public returns the identity's public half for distribution.
func (k *KeyPair) Public() PublicIdentity {
	return PublicIdentity{SigPub: append(ed25519.PublicKey(nil), k.Pub...), BoxPub: append([]byte(nil), k.boxPub...)}
}

// Sign signs msg with the Ed25519 key.
func (k *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.priv, msg) }

// PublicIdentity is the distributable half of a KeyPair.
type PublicIdentity struct {
	SigPub ed25519.PublicKey
	BoxPub []byte // X25519 public key
}

// Verify checks an Ed25519 signature.
func (p PublicIdentity) Verify(msg, sig []byte) error {
	if len(p.SigPub) != ed25519.PublicKeySize || !ed25519.Verify(p.SigPub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// Digest is the identity digest the SAP protocol uses as an identifier: the
// SHA-256 of the signing public key. The paper notes an identifier "could
// be the digest of the owner's public key".
func (p PublicIdentity) Digest() string {
	sum := sha256.Sum256(p.SigPub)
	return hex.EncodeToString(sum[:16])
}

// Bytes flattens the identity for embedding in certificates and messages.
func (p PublicIdentity) Bytes() []byte {
	out := make([]byte, 0, len(p.SigPub)+len(p.BoxPub)+8)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.SigPub)))
	out = append(out, p.SigPub...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.BoxPub)))
	out = append(out, p.BoxPub...)
	return out
}

// ParsePublicIdentity reverses PublicIdentity.Bytes.
func ParsePublicIdentity(b []byte) (PublicIdentity, error) {
	var p PublicIdentity
	sig, rest, err := readChunk(b)
	if err != nil {
		return p, err
	}
	box, rest, err := readChunk(rest)
	if err != nil {
		return p, err
	}
	if len(rest) != 0 {
		return p, fmt.Errorf("pki: %d trailing bytes in identity", len(rest))
	}
	if len(sig) != ed25519.PublicKeySize {
		return p, fmt.Errorf("pki: bad signing key length %d", len(sig))
	}
	p.SigPub = ed25519.PublicKey(sig)
	p.BoxPub = box
	return p, nil
}

func readChunk(b []byte) (chunk, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, ErrShortInput
	}
	n := binary.BigEndian.Uint32(b)
	if uint64(len(b)-4) < uint64(n) {
		return nil, nil, ErrShortInput
	}
	return b[4 : 4+n], b[4+n:], nil
}

// Seal encrypts msg so only the holder of the recipient's box key can read
// it: ephemeral X25519 -> HKDF-free HMAC-based key derivation -> AES-GCM.
// Output layout: epk(32) || nonce(12) || ciphertext.
func Seal(recipient PublicIdentity, msg []byte) ([]byte, error) {
	rpub, err := ecdh.X25519().NewPublicKey(recipient.BoxPub)
	if err != nil {
		return nil, fmt.Errorf("pki: recipient box key: %w", err)
	}
	eph, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(rpub)
	if err != nil {
		return nil, err
	}
	key := boxKey(shared, eph.PublicKey().Bytes(), recipient.BoxPub)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	out := make([]byte, 0, 32+len(nonce)+len(msg)+gcm.Overhead())
	out = append(out, eph.PublicKey().Bytes()...)
	out = append(out, nonce...)
	return gcm.Seal(out, nonce, msg, nil), nil
}

// Open decrypts a sealed box addressed to k.
func (k *KeyPair) Open(box []byte) ([]byte, error) {
	if len(box) < 32+12+16 {
		return nil, ErrShortInput
	}
	epk, err := ecdh.X25519().NewPublicKey(box[:32])
	if err != nil {
		return nil, fmt.Errorf("pki: ephemeral key: %w", err)
	}
	shared, err := k.boxPriv.ECDH(epk)
	if err != nil {
		return nil, err
	}
	key := boxKey(shared, box[:32], k.boxPub)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := box[32 : 32+gcm.NonceSize()]
	pt, err := gcm.Open(nil, nonce, box[32+gcm.NonceSize():], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

func boxKey(shared, epk, rpk []byte) []byte {
	mac := hmac.New(sha256.New, shared)
	mac.Write([]byte("cellbricks-seal-v1"))
	mac.Write(epk)
	mac.Write(rpk)
	return mac.Sum(nil)
}

// Certificate binds a subject name and role to a public identity, signed
// by a CA — the standard-PKI assumption the paper makes for broker and
// bTelco keys.
type Certificate struct {
	Subject   string
	Role      string // "broker" | "btelco" | "ca"
	Identity  PublicIdentity
	NotBefore time.Time
	NotAfter  time.Time
	Signature []byte // CA signature over signedBytes
}

func (c *Certificate) signedBytes() []byte {
	var out []byte
	out = appendString(out, c.Subject)
	out = appendString(out, c.Role)
	out = append(out, c.Identity.Bytes()...)
	out = binary.BigEndian.AppendUint64(out, uint64(c.NotBefore.Unix()))
	out = binary.BigEndian.AppendUint64(out, uint64(c.NotAfter.Unix()))
	return out
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// CA is a certificate authority.
type CA struct {
	Name string
	key  *KeyPair
}

// NewCA creates a certificate authority with a fresh key.
func NewCA(name string) (*CA, error) {
	k, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	return &CA{Name: name, key: k}, nil
}

// NewCAFromSeed creates a deterministic CA for tests.
func NewCAFromSeed(name string, seed []byte) (*CA, error) {
	k, err := KeyPairFromSeed(seed)
	if err != nil {
		return nil, err
	}
	return &CA{Name: name, key: k}, nil
}

// Public returns the CA's verification identity (the trust anchor).
func (ca *CA) Public() PublicIdentity { return ca.key.Public() }

// Issue signs a certificate for the subject, valid for the given window.
func (ca *CA) Issue(subject, role string, id PublicIdentity, notBefore, notAfter time.Time) *Certificate {
	c := &Certificate{
		Subject:   subject,
		Role:      role,
		Identity:  id,
		NotBefore: notBefore.Truncate(time.Second),
		NotAfter:  notAfter.Truncate(time.Second),
	}
	c.Signature = ca.key.Sign(c.signedBytes())
	return c
}

// VerifyCert checks a certificate against a trust anchor at time now.
func VerifyCert(anchor PublicIdentity, c *Certificate, now time.Time) error {
	if c == nil {
		return ErrBadCertificate
	}
	if err := anchor.Verify(c.signedBytes(), c.Signature); err != nil {
		return ErrBadCertificate
	}
	if now.Before(c.NotBefore) || now.After(c.NotAfter) {
		return ErrExpired
	}
	return nil
}

// CertVerifier memoizes VerifyCert for a fixed trust anchor: the broker
// sees the same bTelco certificate on every attachment it grants through
// that bTelco, so after the first verification the Ed25519 operation
// (tens of microseconds, the single most expensive step of SAP request
// handling) can be skipped. Entries are keyed by a digest of the full
// certificate contents *and* signature, so any tampering misses the
// cache, and the validity window is still checked against `now` on every
// call — a cached certificate that has since expired is rejected.
//
// The cache is bounded; when full, an arbitrary entry is evicted (the
// working set is "the bTelcos currently near this broker's users", far
// below any sensible bound). Safe for concurrent use.
type CertVerifier struct {
	anchor PublicIdentity
	max    int

	mu   sync.Mutex
	seen map[[32]byte]certWindow
}

type certWindow struct{ notBefore, notAfter time.Time }

// NewCertVerifier builds a verifier for one trust anchor. max bounds the
// cache entry count; <= 0 selects a default of 256.
func NewCertVerifier(anchor PublicIdentity, max int) *CertVerifier {
	if max <= 0 {
		max = 256
	}
	return &CertVerifier{anchor: anchor, max: max, seen: make(map[[32]byte]certWindow)}
}

// Verify is VerifyCert with memoized signature checks.
func (v *CertVerifier) Verify(c *Certificate, now time.Time) error {
	if c == nil {
		return ErrBadCertificate
	}
	h := sha256.New()
	h.Write(c.signedBytes())
	h.Write(c.Signature)
	var key [32]byte
	h.Sum(key[:0])

	v.mu.Lock()
	w, hit := v.seen[key]
	v.mu.Unlock()
	if hit {
		if now.Before(w.notBefore) || now.After(w.notAfter) {
			return ErrExpired
		}
		return nil
	}
	if err := VerifyCert(v.anchor, c, now); err != nil {
		// Failures are never cached: ErrExpired depends on `now`, and a
		// bad signature costs the attacker the full verification anyway.
		return err
	}
	v.mu.Lock()
	if len(v.seen) >= v.max {
		for k := range v.seen {
			delete(v.seen, k)
			break
		}
	}
	v.seen[key] = certWindow{notBefore: c.NotBefore, notAfter: c.NotAfter}
	v.mu.Unlock()
	return nil
}

// NewNonce returns a 16-byte random nonce (replay protection in SAP).
func NewNonce() ([16]byte, error) {
	var n [16]byte
	_, err := io.ReadFull(rand.Reader, n[:])
	return n, err
}

package pki

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func mustPair(t *testing.T, seed byte) *KeyPair {
	t.Helper()
	s := bytes.Repeat([]byte{seed}, 32)
	k, err := KeyPairFromSeed(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestSignVerify(t *testing.T) {
	k := mustPair(t, 1)
	msg := []byte("attach request")
	sig := k.Sign(msg)
	if err := k.Public().Verify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := k.Public().Verify([]byte("tampered"), sig); err == nil {
		t.Fatal("verify accepted tampered message")
	}
	other := mustPair(t, 2)
	if err := other.Public().Verify(msg, sig); err == nil {
		t.Fatal("verify accepted wrong key")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	k := mustPair(t, 3)
	msg := []byte("authVec: idU=abc idB=broker idT=telco nonce=123")
	box, err := Seal(k.Public(), msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := k.Open(box)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("roundtrip mismatch: %q", got)
	}
}

func TestSealWrongRecipient(t *testing.T) {
	a, b := mustPair(t, 4), mustPair(t, 5)
	box, err := Seal(a.Public(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Open(box); err == nil {
		t.Fatal("wrong recipient opened box")
	}
}

func TestSealTamperDetected(t *testing.T) {
	k := mustPair(t, 6)
	box, err := Seal(k.Public(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	box[len(box)-1] ^= 1
	if _, err := k.Open(box); err == nil {
		t.Fatal("tampered box opened")
	}
}

func TestSealNondeterministic(t *testing.T) {
	k := mustPair(t, 7)
	b1, _ := Seal(k.Public(), []byte("x"))
	b2, _ := Seal(k.Public(), []byte("x"))
	if bytes.Equal(b1, b2) {
		t.Fatal("two seals of the same message are identical (no ephemeral randomness)")
	}
}

func TestOpenShortInput(t *testing.T) {
	k := mustPair(t, 8)
	if _, err := k.Open([]byte("short")); err == nil {
		t.Fatal("short box accepted")
	}
}

func TestIdentityBytesRoundTrip(t *testing.T) {
	k := mustPair(t, 9)
	b := k.Public().Bytes()
	got, err := ParsePublicIdentity(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.SigPub, k.Public().SigPub) || !bytes.Equal(got.BoxPub, k.Public().BoxPub) {
		t.Fatal("identity roundtrip mismatch")
	}
	if _, err := ParsePublicIdentity(b[:len(b)-1]); err == nil {
		t.Fatal("truncated identity accepted")
	}
	if _, err := ParsePublicIdentity(append(b, 0)); err == nil {
		t.Fatal("identity with trailing bytes accepted")
	}
}

func TestDigestStableAndDistinct(t *testing.T) {
	a, b := mustPair(t, 10), mustPair(t, 11)
	if a.Public().Digest() != a.Public().Digest() {
		t.Fatal("digest not stable")
	}
	if a.Public().Digest() == b.Public().Digest() {
		t.Fatal("distinct keys share a digest")
	}
	if len(a.Public().Digest()) != 32 {
		t.Fatalf("digest length %d, want 32 hex chars", len(a.Public().Digest()))
	}
}

func TestCertificateIssueVerify(t *testing.T) {
	ca, err := NewCAFromSeed("root", bytes.Repeat([]byte{42}, 32))
	if err != nil {
		t.Fatal(err)
	}
	telco := mustPair(t, 12)
	now := time.Unix(1_700_000_000, 0)
	cert := ca.Issue("btelco-1.example", "btelco", telco.Public(), now.Add(-time.Hour), now.Add(time.Hour))
	if err := VerifyCert(ca.Public(), cert, now); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Expired.
	if err := VerifyCert(ca.Public(), cert, now.Add(2*time.Hour)); err != ErrExpired {
		t.Fatalf("expired cert: err=%v, want ErrExpired", err)
	}
	// Not yet valid.
	if err := VerifyCert(ca.Public(), cert, now.Add(-2*time.Hour)); err != ErrExpired {
		t.Fatalf("premature cert: err=%v, want ErrExpired", err)
	}
	// Tampered subject.
	bad := *cert
	bad.Subject = "evil"
	if err := VerifyCert(ca.Public(), &bad, now); err != ErrBadCertificate {
		t.Fatalf("tampered cert: err=%v, want ErrBadCertificate", err)
	}
	// Wrong anchor.
	ca2, _ := NewCAFromSeed("other", bytes.Repeat([]byte{43}, 32))
	if err := VerifyCert(ca2.Public(), cert, now); err != ErrBadCertificate {
		t.Fatalf("wrong anchor: err=%v, want ErrBadCertificate", err)
	}
	if err := VerifyCert(ca.Public(), nil, now); err != ErrBadCertificate {
		t.Fatalf("nil cert: err=%v", err)
	}
}

func TestDeterministicSeedStability(t *testing.T) {
	a := mustPair(t, 20)
	b := mustPair(t, 20)
	if !bytes.Equal(a.Public().SigPub, b.Public().SigPub) {
		t.Fatal("same seed produced different signing keys")
	}
	if !bytes.Equal(a.Public().BoxPub, b.Public().BoxPub) {
		t.Fatal("same seed produced different box keys")
	}
}

func TestNewNonceUnique(t *testing.T) {
	a, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNonce()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("two nonces identical")
	}
}

// Property: seal/open round-trips arbitrary payloads.
func TestPropertySealOpen(t *testing.T) {
	k := mustPair(t, 30)
	f := func(msg []byte) bool {
		box, err := Seal(k.Public(), msg)
		if err != nil {
			return false
		}
		got, err := k.Open(box)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: signatures verify for the signed message and fail for any
// prefix-modified variant.
func TestPropertySignTamper(t *testing.T) {
	k := mustPair(t, 31)
	f := func(msg []byte, flip uint8) bool {
		sig := k.Sign(msg)
		if k.Public().Verify(msg, sig) != nil {
			return false
		}
		if len(msg) == 0 {
			return true
		}
		bad := append([]byte(nil), msg...)
		bad[int(flip)%len(bad)] ^= 0xFF
		return k.Public().Verify(bad, sig) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCertVerifierMemoization pins the cache's safety properties: hits
// agree with VerifyCert, the validity window is re-checked on every call
// (a cached cert still expires), tampering misses the cache, and the
// entry count stays bounded.
func TestCertVerifierMemoization(t *testing.T) {
	ca, err := NewCAFromSeed("root", bytes.Repeat([]byte{42}, 32))
	if err != nil {
		t.Fatal(err)
	}
	telco := mustPair(t, 12)
	now := time.Unix(1_700_000_000, 0)
	cert := ca.Issue("btelco-1.example", "btelco", telco.Public(), now.Add(-time.Hour), now.Add(time.Hour))

	v := NewCertVerifier(ca.Public(), 4)
	for i := 0; i < 3; i++ { // first call populates, later ones hit
		if err := v.Verify(cert, now); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Cached entry must still honour the validity window.
	if err := v.Verify(cert, now.Add(2*time.Hour)); err != ErrExpired {
		t.Fatalf("cached expired cert: err=%v, want ErrExpired", err)
	}
	if err := v.Verify(cert, now.Add(-2*time.Hour)); err != ErrExpired {
		t.Fatalf("cached premature cert: err=%v, want ErrExpired", err)
	}
	// Tampering changes the digest key, so the forgery cannot ride the
	// cached verdict.
	bad := *cert
	bad.Subject = "evil"
	if err := v.Verify(&bad, now); err != ErrBadCertificate {
		t.Fatalf("tampered cert: err=%v, want ErrBadCertificate", err)
	}
	if err := v.Verify(nil, now); err != ErrBadCertificate {
		t.Fatalf("nil cert: err=%v", err)
	}
	// Bounded: issuing more certs than the cap must not grow the map.
	for i := 0; i < 10; i++ {
		k := mustPair(t, byte(100+i))
		c := ca.Issue(fmt.Sprintf("t%d", i), "btelco", k.Public(), now.Add(-time.Hour), now.Add(time.Hour))
		if err := v.Verify(c, now); err != nil {
			t.Fatalf("cert %d: %v", i, err)
		}
	}
	v.mu.Lock()
	n := len(v.seen)
	v.mu.Unlock()
	if n > 4 {
		t.Fatalf("cache grew to %d entries, cap 4", n)
	}
}

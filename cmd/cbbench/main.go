// Command cbbench regenerates every table and figure of the CellBricks
// paper's evaluation (§6) as text output:
//
//	cbbench -exp fig7            # attachment latency breakdown
//	cbbench -exp table1          # application performance, MNO vs CB
//	cbbench -exp fig8            # iperf timeline around a handover
//	cbbench -exp fig9            # attach-latency factor analysis
//	cbbench -exp fig10           # day vs night rate limiting
//	cbbench -exp failover        # fault injection: outage-to-recovery + goodput dip
//	cbbench -exp byzantine       # Byzantine bTelcos vs quarantine, invariant-checked soak
//	cbbench -exp storm           # attach storm vs broker batching/caching/admission control
//	cbbench -exp all
//
// Flags tune the emulated duration, trials and seed; results print the
// same rows/series the paper reports. Independent simulations within an
// experiment fan out over -workers goroutines (default: GOMAXPROCS) with
// output byte-identical to -seq; -shards K additionally partitions each
// scale/failover world across K netem shards running in parallel, again
// with byte-identical output for any K; -json appends a machine-readable
// record of each experiment's wall time, allocations, and headline
// metrics to BENCH_<date>.json, building a benchmark trajectory across
// commits.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"runtime/pprof"

	"cellbricks/internal/chaos"
	"cellbricks/internal/mobility"
	"cellbricks/internal/netem"
	"cellbricks/internal/obs"
	"cellbricks/internal/testbed"
)

// testbedDowntown avoids importing trace at every call site.
func testbedDowntown() mobility.Route { return mobility.Downtown }

// expRecord is one experiment's entry in the bench-trajectory file.
type expRecord struct {
	Name         string             `json:"name"`
	WallMS       float64            `json:"wall_ms"`
	Mallocs      uint64             `json:"mallocs"`
	AllocBytes   uint64             `json:"alloc_bytes"`
	OutputSHA256 string             `json:"output_sha256"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
	// Telemetry is the experiment's delta of the process-wide obs registry
	// (counters moved, gauges as of the end of the run).
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// benchRun is one cbbench invocation: its configuration plus every
// experiment it ran.
type benchRun struct {
	Label      string `json:"label,omitempty"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"` // 0 = GOMAXPROCS; clamped to GOMAXPROCS when larger
	Sequential bool   `json:"sequential"`
	// Shards is the requested -shards value; ShardsEffective is after the
	// GOMAXPROCS clamp — the K that actually ran.
	Shards          int         `json:"shards"`
	ShardsEffective int         `json:"shards_effective"`
	Seed            int64       `json:"seed"`
	Experiments     []expRecord `json:"experiments"`
}

// benchFile is the on-disk trajectory: successive runs append, so one file
// carries before/after numbers across commits.
type benchFile struct {
	Runs []benchRun `json:"runs"`
}

func appendBenchRun(path string, run benchRun) error {
	var f benchFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("%s exists but is not a bench file: %w", path, err)
		}
	}
	f.Runs = append(f.Runs, run)
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTrace renders the recorded trace: Chrome trace-event JSON (open in
// Perfetto or chrome://tracing) by default, JSON lines when the path ends
// in .jsonl.
func writeTrace(events []obs.TraceEvent, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = obs.WriteJSONLEvents(f, events)
	} else {
		err = obs.WriteChromeTraceEvents(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTimelines folds the trace into per-session timelines: deterministic
// text by default, JSON when the path ends in .json.
func writeTimelines(events []obs.TraceEvent, path string) (int, error) {
	tls := obs.BuildTimelines(events)
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if strings.HasSuffix(path, ".json") {
		err = obs.WriteTimelinesJSON(f, tls)
	} else {
		err = obs.RenderTimelines(f, tls)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return len(tls), err
}

func main() {
	exp := flag.String("exp", "all", "experiment: fig7|table1|fig8|fig9|fig10|transports|scale|billing|failover|byzantine|storm|all")
	seed := flag.Int64("seed", 1, "deterministic seed")
	n := flag.Int("n", 100, "fig7: attach repetitions per cell")
	dur := flag.Duration("dur", 5*time.Minute, "table1: emulated drive time per cell")
	trials := flag.Int("trials", 3, "fig9: trials per configuration")
	workers := flag.Int("workers", 0, "worker goroutines for independent simulations (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run every simulation sequentially (same output, no parallelism)")
	shards := flag.Int("shards", 1, "netem world shards for scale/failover (clamped to GOMAXPROCS; output is byte-identical for any value)")
	scaleN := flag.String("scale-n", "1,4,16,64,1024,10240", "scale: comma-separated UE counts to sweep")
	faults := flag.String("faults", "flap=2x3s,pause=1x800ms,broker=1x10s,crash=1x6s,corrupt=1x5s@0.05",
		"failover: fault spec, class=COUNTxDUR[@RATE] comma-separated (classes: flap pause broker crash corrupt trunc)")
	byzGroups := flag.Int("byz-groups", 4, "byzantine: fault-isolated groups of cells and UEs")
	byzCells := flag.Int("byz-cells", 2, "byzantine: bTelco cells per group")
	byzUEs := flag.Int("byz-ues", 6, "byzantine: UEs per group")
	byzFrac := flag.Float64("byz-frac", 0.25, "byzantine: adversarial fraction of all cells (negative for none)")
	byzSpec := flag.String("byz-spec", testbed.DefaultByzantineSpec,
		"byzantine: adversary spec, class=COUNTxDUR[@RATE] (classes: overbill underbill replay blackhole nasdrop hodrop)")
	stormRate := flag.Float64("storm-rate", 40, "storm: fleet-wide base attach arrival rate per second (ramps to 2x by the horizon)")
	stormSpike := flag.Float64("storm-spike", 8, "storm: flash-crowd rate multiplier over the mid-run spike window")
	stormUEs := flag.Int("storm-ues", 25, "storm: UEs per group (4 groups of 2 cells)")
	stormSerial := flag.Bool("storm-serial", false, "storm: serial baseline — no batch pipeline, no auth cache, no resume fast path (rendered output is byte-identical either way)")
	jsonOut := flag.Bool("json", false, "append wall time/allocs/metrics to the bench-trajectory file")
	jsonPath := flag.String("json-file", "", "bench-trajectory file (default BENCH_<date>.json)")
	label := flag.String("label", "", "label for this run in the bench-trajectory file")
	traceOut := flag.String("trace-out", "", "write the failover protocol trace to this file (Chrome trace-event JSON; .jsonl suffix for JSON lines)")
	timelineOut := flag.String("timeline-out", "", "write per-session attach timelines folded from the trace to this file (deterministic text; .json suffix for JSON)")
	traceSession := flag.String("trace-session", "", "restrict -trace-out/-timeline-out to one trace ID (16 hex digits, as printed in timeline headers)")
	flightOut := flag.String("flight-out", "", "write the flight-recorder ring (recent trace events per component) to this file; always written on a failing exit (default cbbench-flight.txt)")
	byzNoSLO := flag.Bool("byz-no-slo", false, "byzantine: disable the SLO-breach quarantine signal (the SLO engine still evaluates and renders margins)")
	sched := flag.String("sched", "wheel", "netem event scheduler: wheel|heap (output is identical; heap is the reference for A/B determinism checks)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile per experiment to <prefix>.<exp>.cpu.pprof")
	memProfile := flag.String("memprofile", "", "write a heap profile per experiment to <prefix>.<exp>.mem.pprof")
	verbose := flag.Bool("v", false, "enable debug-level logging")
	flag.Parse()
	obs.Verbose(*verbose)
	switch *sched {
	case "wheel":
		netem.SetDefaultScheduler(netem.SchedulerWheel)
	case "heap":
		netem.SetDefaultScheduler(netem.SchedulerHeap)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q: want wheel|heap\n", *sched)
		os.Exit(2)
	}

	// The tracer is always armed so the flight recorder has a feed; the
	// full event log is retained only when something will consume it.
	// Recording is observation-only — traced and untraced runs render
	// byte-identically (tested), so an always-on tracer is safe.
	tracer := obs.NewTracer(nil) // rebound to each run's sim clock
	tracer.SetRetain(*traceOut != "" || *timelineOut != "" || *traceSession != "")
	flight := obs.NewFlightRecorder(64)
	tracer.SetFlight(flight)
	dumpFlight := func() {
		path := *flightOut
		if path == "" {
			path = "cbbench-flight.txt"
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight dump: %v\n", err)
			return
		}
		err = flight.WriteDump(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight dump: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stderr, "flight recorder: %d recent events dumped to %s\n", flight.Len(), path)
	}

	runner := testbed.Runner{Workers: *workers, Sequential: *seq}
	effShards := netem.ClampShards(*shards)
	rec := benchRun{
		Label:           *label,
		Date:            time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Workers:         *workers,
		Sequential:      *seq,
		Shards:          *shards,
		ShardsEffective: effShards,
		Seed:            *seed,
	}
	// -dur defaults to the Table 1 drive time; the scale sweep has its own
	// 60 s default unless -dur was given explicitly.
	durSet := false
	flag.Visit(func(f *flag.Flag) { durSet = durSet || f.Name == "dur" })
	scaleDur := 60 * time.Second
	if durSet {
		scaleDur = *dur
	}

	// run executes one experiment, prints its rendered output, and (for
	// -json) records wall time, allocation deltas, and headline metrics.
	run := func(name, title string, f func() (string, map[string]float64, error)) {
		fmt.Printf("==== %s ====\n", title)
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		telemBefore := obs.Default().Snapshot()
		var cpuFile *os.File
		if *cpuProfile != "" {
			var err error
			cpuFile, err = os.Create(fmt.Sprintf("%s.%s.cpu.pprof", *cpuProfile, name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
				os.Exit(1)
			}
			if err := pprof.StartCPUProfile(cpuFile); err != nil {
				fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
				os.Exit(1)
			}
		}
		t0 := time.Now()
		out, metrics, err := f()
		wall := time.Since(t0)
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if *memProfile != "" {
			mf, merr := os.Create(fmt.Sprintf("%s.%s.mem.pprof", *memProfile, name))
			if merr == nil {
				runtime.GC()
				merr = pprof.WriteHeapProfile(mf)
				if cerr := mf.Close(); merr == nil {
					merr = cerr
				}
			}
			if merr != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", merr)
				os.Exit(1)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			dumpFlight()
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Println()
		sum := sha256.Sum256([]byte(out))
		rec.Experiments = append(rec.Experiments, expRecord{
			Name:         name,
			WallMS:       float64(wall.Microseconds()) / 1000,
			Mallocs:      after.Mallocs - before.Mallocs,
			AllocBytes:   after.TotalAlloc - before.TotalAlloc,
			OutputSHA256: hex.EncodeToString(sum[:]),
			Metrics:      metrics,
			Telemetry:    obs.Delta(telemBefore, obs.Default().Snapshot()),
		})
	}

	matched := false
	want := func(name string) bool {
		ok := *exp == "all" || *exp == name
		matched = matched || ok
		return ok
	}

	if want("fig7") {
		run("fig7", "Fig. 7: attachment latency breakdown (BL = Magma baseline, CB = CellBricks)", func() (string, map[string]float64, error) {
			results, err := testbed.RunFig7(*n, runner)
			if err != nil {
				return "", nil, err
			}
			m := make(map[string]float64)
			for _, r := range results {
				m[fmt.Sprintf("%s_%s_mean_ms", r.Placement.Name, r.Arch)] = r.Mean.Seconds() * 1000
			}
			return testbed.RenderFig7(results), m, nil
		})
	}
	if want("table1") {
		run("table1", "Table 1: application performance, MNO vs CellBricks", func() (string, map[string]float64, error) {
			res := testbed.RunTable1(testbed.Table1Config{Duration: *dur, Seed: *seed, Runner: runner})
			ipD, mosD, vidD, webD := res.Slowdown(false)
			ipN, mosN, vidN, webN := res.Slowdown(true)
			m := map[string]float64{
				"slowdown_day_iperf": ipD, "slowdown_day_voip": mosD,
				"slowdown_day_video": vidD, "slowdown_day_web": webD,
				"slowdown_night_iperf": ipN, "slowdown_night_voip": mosN,
				"slowdown_night_video": vidN, "slowdown_night_web": webN,
			}
			return res.Render(), m, nil
		})
	}
	if want("fig8") {
		run("fig8", "Fig. 8: iperf throughput around a handover (day, downtown)", func() (string, map[string]float64, error) {
			res := testbed.RunFig8(*seed, 60*time.Second)
			mnoMean, _, _ := testbed.Stats(res.MNOSeries)
			cbMean, _, _ := testbed.Stats(res.CBSeries)
			m := map[string]float64{"mno_mean_mbps": mnoMean / 1e6, "cb_mean_mbps": cbMean / 1e6}
			return res.Render(), m, nil
		})
	}
	if want("fig9") {
		run("fig9", "Fig. 9: relative throughput vs time since handover (night)", func() (string, map[string]float64, error) {
			res := testbed.RunFig9(*seed, *trials, runner)
			m := make(map[string]float64)
			for _, c := range res.Curves {
				if len(c.Points) > 0 {
					m[fmt.Sprintf("relperf_1s[%s]", c.Label)] = c.Points[0].RelPerf
				}
			}
			return res.Render(), m, nil
		})
	}
	if want("transports") {
		run("transports", "Ablation: host transports (MPTCP/QUIC/TCP+L7) web loads", func() (string, map[string]float64, error) {
			out := ""
			m := make(map[string]float64)
			for _, c := range testbed.RunTransportComparisonAll(*seed, *dur, runner) {
				out += fmt.Sprintf("%-22s %6.2fs over %d pages\n", c.Label, c.WebLoad.Seconds(), c.Pages)
				m[fmt.Sprintf("webload_s[%s]", c.Label)] = c.WebLoad.Seconds()
			}
			return out, m, nil
		})
	}
	if want("billing") {
		run("billing", "Integration: verifiable billing across a full night drive", func() (string, map[string]float64, error) {
			sc := testbed.Scenario{Route: testbedDowntown(), Night: true, Arch: testbed.ArchCellBricks, Seed: *seed, Duration: *dur}
			res, err := testbed.RunBilledDrive(sc, 30*time.Second)
			if err != nil {
				return "", nil, err
			}
			out := fmt.Sprintf("sessions=%d cycles=%d mismatches=%d\nUE-attested %d bytes, bTelco-claimed %d (gap %.3f%%)\nsettled %.6f units across %d bTelcos\n",
				res.Sessions, res.Cycles, res.Mismatches,
				res.UEBytes, res.TelcoBytes,
				100*(float64(res.TelcoBytes)-float64(res.UEBytes))/float64(res.UEBytes),
				res.TotalOwed, len(res.Settlements))
			m := map[string]float64{
				"sessions":   float64(res.Sessions),
				"mismatches": float64(res.Mismatches),
				"total_owed": res.TotalOwed,
			}
			return out, m, nil
		})
	}
	if want("scale") {
		run("scale", "Ablation: shared-cell scaling (50 Mbps cells, sharded world)", func() (string, map[string]float64, error) {
			var counts []int
			for _, f := range strings.Split(*scaleN, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil || n < 1 {
					return "", nil, fmt.Errorf("scale: bad -scale-n entry %q", f)
				}
				counts = append(counts, n)
			}
			cfg := testbed.ScaleConfig{Seed: *seed, CellBps: 50e6, Duration: scaleDur, Shards: effShards}
			results := testbed.RunScaleSweep(cfg, counts)
			m := make(map[string]float64)
			for _, r := range results {
				m[fmt.Sprintf("fairness_%due", r.N)] = r.Fairness
				m[fmt.Sprintf("wall_ms_%due", r.N)] = r.WallMS
				m[fmt.Sprintf("perue_p50_mbps_%due", r.N)] = r.PerUEBps.P50 / 1e6
				m[fmt.Sprintf("perue_p90_mbps_%due", r.N)] = r.PerUEBps.P90 / 1e6
				m[fmt.Sprintf("perue_p99_mbps_%due", r.N)] = r.PerUEBps.P99 / 1e6
				m[fmt.Sprintf("perue_min_mbps_%due", r.N)] = r.PerUEBps.Min / 1e6
				m[fmt.Sprintf("perue_max_mbps_%due", r.N)] = r.PerUEBps.Max / 1e6
			}
			return testbed.RenderScale(results), m, nil
		})
	}
	if want("failover") {
		run("failover", "Failover: seeded fault injection, outage-to-recovery and goodput dip", func() (string, map[string]float64, error) {
			spec, err := chaos.ParseSpec(*faults)
			if err != nil {
				return "", nil, err
			}
			res, err := testbed.RunFailover(testbed.FailoverConfig{
				Seed: *seed, Duration: *dur, Spec: spec, Tracer: tracer, Shards: effShards,
			})
			if err != nil {
				return "", nil, err
			}
			m := map[string]float64{
				"baseline_mbps":   res.BaselineBps / 1e6,
				"faulted_mbps":    res.FaultedBps / 1e6,
				"attach_retries":  float64(res.AttachRetries),
				"fallbacks":       float64(res.Fallbacks),
				"broker_restores": float64(res.BrokerRestores),
				"unrecovered":     float64(res.Unrecovered),
			}
			// Per-kind worst case: the number the availability story is
			// judged on.
			for _, o := range res.Outcomes {
				if !o.Recovered {
					continue
				}
				key := fmt.Sprintf("recovery_ms_%s", o.Kind)
				if ms := o.Recovery.Seconds() * 1000; ms > m[key] {
					m[key] = ms
				}
				key = fmt.Sprintf("dip_pct_%s", o.Kind)
				if o.DipPct > m[key] {
					m[key] = o.DipPct
				}
			}
			if res.Unrecovered > 0 {
				return res.Render(), m, fmt.Errorf("failover: %d fault(s) did not recover", res.Unrecovered)
			}
			return res.Render(), m, nil
		})
	}
	if want("byzantine") {
		run("byzantine", "Byzantine soak: adversarial bTelcos vs closed-loop quarantine", func() (string, map[string]float64, error) {
			spec, err := chaos.ParseSpec(*byzSpec)
			if err != nil {
				return "", nil, err
			}
			// The soak's own 60 s default unless -dur was given explicitly.
			byzDur := 60 * time.Second
			if durSet {
				byzDur = *dur
			}
			res, err := testbed.RunByzantine(testbed.ByzantineConfig{
				Seed:             *seed,
				Duration:         byzDur,
				Groups:           *byzGroups,
				CellsPerGroup:    *byzCells,
				UEsPerGroup:      *byzUEs,
				AdversarialFrac:  *byzFrac,
				AdvSpec:          spec,
				Shards:           effShards,
				Tracer:           tracer,
				DisableSLOSignal: *byzNoSLO,
			})
			if err != nil {
				return "", nil, err
			}
			quarantined := 0
			for _, c := range res.Cells {
				if c.Quarantined {
					quarantined++
				}
			}
			m := map[string]float64{
				"adversaries":    float64(res.Adversaries),
				"quarantined":    float64(quarantined),
				"availability":   res.Availability,
				"watchdog_trips": float64(res.WatchdogTrips),
				"kicks":          float64(res.Kicks),
				"violations":     float64(res.Violations),
			}
			if res.Violations > 0 {
				bad := make([]string, 0, res.Violations)
				for _, iv := range res.Invariants {
					if !iv.OK {
						bad = append(bad, fmt.Sprintf("%s (%s)", iv.Name, iv.Detail))
					}
				}
				return res.Render(), m, fmt.Errorf("byzantine: %d invariant violation(s): %s",
					res.Violations, strings.Join(bad, "; "))
			}
			return res.Render(), m, nil
		})
	}
	if want("storm") {
		run("storm", "Attach storm: flash crowd vs broker batching, caching and admission control", func() (string, map[string]float64, error) {
			// The storm's own 30 s default unless -dur was given explicitly.
			stormDur := 30 * time.Second
			if durSet {
				stormDur = *dur
			}
			res, err := testbed.RunStorm(testbed.StormConfig{
				Seed:        *seed,
				Duration:    stormDur,
				UEsPerGroup: *stormUEs,
				BaseRate:    *stormRate,
				Spike:       *stormSpike,
				Serial:      *stormSerial,
				Shards:      effShards,
			})
			if err != nil {
				return "", nil, err
			}
			wall := res.WallPre + res.WallSpike + res.WallPost
			m := map[string]float64{
				"attaches":               float64(res.Attaches),
				"sheds":                  float64(res.Sheds),
				"shed_frac":              res.ShedFraction(),
				"resumes":                float64(res.Resumes),
				"cache_hits":             float64(res.CacheHits),
				"cache_misses":           float64(res.CacheMisses),
				"batch_flushes":          float64(res.BatchFlushes),
				"batch_items":            float64(res.BatchItems),
				"wall_pre_ms":            res.WallPre.Seconds() * 1000,
				"wall_spike_ms":          res.WallSpike.Seconds() * 1000,
				"wall_post_ms":           res.WallPost.Seconds() * 1000,
				"spike_attaches_per_sec": res.SpikeAttachesPerSec(),
			}
			if wall > 0 {
				m["attaches_per_sec"] = float64(res.Grants) / wall.Seconds()
			}
			return res.Render(), m, nil
		})
	}
	if want("fig10") {
		run("fig10", "Fig. 10 (Appendix A): day vs night rate limiting (downtown)", func() (string, map[string]float64, error) {
			res := testbed.RunFig10(*seed, 500*time.Second)
			dm, _, _ := testbed.Stats(res.DaySeries)
			nm, _, _ := testbed.Stats(res.NightSeries)
			m := map[string]float64{"night_day_ratio": nm / dm}
			return res.Render(), m, nil
		})
	}

	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q: want fig7|table1|fig8|fig9|fig10|transports|scale|billing|failover|byzantine|storm|all\n", *exp)
		os.Exit(2)
	}

	if *traceOut != "" || *timelineOut != "" {
		events := tracer.Events()
		if *traceSession != "" {
			id, err := obs.ParseTraceID(*traceSession)
			if err != nil {
				fmt.Fprintf(os.Stderr, "trace-session: %v\n", err)
				os.Exit(2)
			}
			events = obs.FilterTrace(events, id)
		}
		if *traceOut != "" {
			if err := writeTrace(events, *traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "trace file: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d trace events to %s\n", len(events), *traceOut)
		}
		if *timelineOut != "" {
			n, err := writeTimelines(events, *timelineOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "timeline file: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d session timelines to %s\n", n, *timelineOut)
		}
	}
	if *flightOut != "" {
		dumpFlight()
	}

	if *jsonOut {
		path := *jsonPath
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("2006-01-02"))
		}
		if err := appendBenchRun(path, rec); err != nil {
			fmt.Fprintf(os.Stderr, "bench file: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("appended run (%d experiments) to %s\n", len(rec.Experiments), path)
	}
}

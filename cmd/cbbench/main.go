// Command cbbench regenerates every table and figure of the CellBricks
// paper's evaluation (§6) as text output:
//
//	cbbench -exp fig7            # attachment latency breakdown
//	cbbench -exp table1          # application performance, MNO vs CB
//	cbbench -exp fig8            # iperf timeline around a handover
//	cbbench -exp fig9            # attach-latency factor analysis
//	cbbench -exp fig10           # day vs night rate limiting
//	cbbench -exp all
//
// Flags tune the emulated duration, trials and seed; results print the
// same rows/series the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cellbricks/internal/testbed"
	"cellbricks/internal/trace"
)

// testbedDowntown avoids importing trace at every call site.
func testbedDowntown() trace.Route { return trace.Downtown }

func main() {
	exp := flag.String("exp", "all", "experiment: fig7|table1|fig8|fig9|fig10|transports|scale|billing|all")
	seed := flag.Int64("seed", 1, "deterministic seed")
	n := flag.Int("n", 100, "fig7: attach repetitions per cell")
	dur := flag.Duration("dur", 8*time.Minute, "table1: emulated drive time per cell")
	trials := flag.Int("trials", 3, "fig9: trials per configuration")
	flag.Parse()

	run := func(name string, f func() error) {
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("fig7") {
		run("Fig. 7: attachment latency breakdown (BL = Magma baseline, CB = CellBricks)", func() error {
			var results []testbed.AttachBenchResult
			for _, place := range testbed.Placements() {
				for _, arch := range []testbed.Arch{testbed.ArchBaseline, testbed.ArchCellBricks} {
					r, err := testbed.RunAttachBench(arch, place, *n)
					if err != nil {
						return err
					}
					results = append(results, r)
				}
			}
			fmt.Print(testbed.RenderFig7(results))
			return nil
		})
	}
	if want("table1") {
		run("Table 1: application performance, MNO vs CellBricks", func() error {
			res := testbed.RunTable1(testbed.Table1Config{Duration: *dur, Seed: *seed})
			fmt.Print(res.Render())
			return nil
		})
	}
	if want("fig8") {
		run("Fig. 8: iperf throughput around a handover (day, downtown)", func() error {
			fmt.Print(testbed.RunFig8(*seed, 60*time.Second).Render())
			return nil
		})
	}
	if want("fig9") {
		run("Fig. 9: relative throughput vs time since handover (night)", func() error {
			fmt.Print(testbed.RunFig9(*seed, *trials).Render())
			return nil
		})
	}
	if want("transports") {
		run("Ablation: host transports (MPTCP/QUIC/TCP+L7) web loads", func() error {
			for _, c := range testbed.RunTransportComparisonAll(*seed, *dur) {
				fmt.Printf("%-22s %6.2fs over %d pages\n", c.Label, c.WebLoad.Seconds(), c.Pages)
			}
			return nil
		})
	}
	if want("billing") {
		run("Integration: verifiable billing across a full night drive", func() error {
			sc := testbed.Scenario{Route: testbedDowntown(), Night: true, Arch: testbed.ArchCellBricks, Seed: *seed, Duration: *dur}
			res, err := testbed.RunBilledDrive(sc, 30*time.Second)
			if err != nil {
				return err
			}
			fmt.Printf("sessions=%d cycles=%d mismatches=%d\nUE-attested %d bytes, bTelco-claimed %d (gap %.3f%%)\nsettled %.6f units across %d bTelcos\n",
				res.Sessions, res.Cycles, res.Mismatches,
				res.UEBytes, res.TelcoBytes,
				100*(float64(res.TelcoBytes)-float64(res.UEBytes))/float64(res.UEBytes),
				res.TotalOwed, len(res.Settlements))
			return nil
		})
	}
	if want("scale") {
		run("Ablation: shared-cell scaling (50 Mbps cell)", func() error {
			var results []testbed.ScaleResult
			for _, nUE := range []int{1, 4, 16, 64} {
				results = append(results, testbed.RunScale(*seed, nUE, 50e6, 60*time.Second))
			}
			fmt.Print(testbed.RenderScale(results))
			return nil
		})
	}
	if want("fig10") {
		run("Fig. 10 (Appendix A): day vs night rate limiting (downtown)", func() error {
			fmt.Print(testbed.RunFig10(*seed, 500*time.Second).Render())
			return nil
		})
	}
}

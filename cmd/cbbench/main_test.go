package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCbbench compiles the command once into a temp dir.
func buildCbbench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cbbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestFailoverOutputUnchangedByTracing is the CLI acceptance test for the
// telemetry-determinism contract: `-exp failover` renders byte-identically
// whether or not a trace is being recorded.
func TestFailoverOutputUnchangedByTracing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the binary")
	}
	bin := buildCbbench(t)
	args := []string{"-exp", "failover", "-seed", "7", "-dur", "75s"}

	plain, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("untraced run: %v", err)
	}

	tracePath := filepath.Join(t.TempDir(), "trace.json")
	traced, err := exec.Command(bin, append(args, "-trace-out", tracePath)...).Output()
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}

	// The traced run appends one "wrote N trace events" status line; the
	// experiment output above it must match byte for byte.
	tracedStr := string(traced)
	if i := strings.Index(tracedStr, "wrote "); i >= 0 {
		tracedStr = tracedStr[:i]
	}
	if string(plain) != tracedStr {
		t.Fatalf("tracing changed the experiment output:\n--- untraced ---\n%s--- traced ---\n%s", plain, tracedStr)
	}

	// And the trace itself is a valid, non-empty Chrome trace-event array.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
}

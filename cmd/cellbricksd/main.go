// Command cellbricksd runs a CellBricks testbed node over real TCP
// sockets. It can play three roles:
//
//	cellbricksd -role broker -listen 127.0.0.1:7700
//	    Runs brokerd: SAP authorization + billing ingestion.
//
//	cellbricksd -role btelco -listen 127.0.0.1:7800 -broker-addr 127.0.0.1:7700
//	    Runs a bTelco (AGW + NAS server) that forwards SAP requests to the
//	    broker. (In this self-contained testbed build, keys and
//	    certificates come from a deterministic demo CA shared by all
//	    roles.)
//
//	cellbricksd -role ue -btelco-addr 127.0.0.1:7800
//	    Provisions a UE with the local demo broker state, attaches via
//	    SAP over TCP, prints the attachment, and detaches.
//
//	cellbricksd -role demo
//	    Runs all three in-process on loopback, attaches a UE, passes one
//	    billing cycle, and prints everything — the zero-config smoke test.
//
// Observability: -debug-addr serves Prometheus text metrics (/metrics),
// expvar (/debug/vars), and pprof (/debug/pprof/) for whatever role is
// running; -v raises logging to debug level (wire retries, redials);
// -trace-out (demo role) records the attach's causal span tree to a
// Chrome-trace or JSON-lines file.
//
// The demo CA/keys make the roles interoperable without a key-exchange
// step; a production deployment would provision real keys (see DESIGN.md).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"cellbricks/internal/broker"
	"cellbricks/internal/epc"
	"cellbricks/internal/obs"
	"cellbricks/internal/pki"
	"cellbricks/internal/qos"
	"cellbricks/internal/sap"
	"cellbricks/internal/testbed"
	"cellbricks/internal/ue"
	"cellbricks/internal/wire"
)

const logSub = "cellbricksd"

// fatalf logs at error level and exits.
func fatalf(format string, args ...any) {
	obs.Errorf(logSub, format, args...)
	os.Exit(1)
}

// Deterministic demo credentials shared by the roles so a multi-process
// testbed needs no key distribution.
func demoCA() *pki.CA {
	ca, err := pki.NewCAFromSeed("demo-ca", bytes.Repeat([]byte{81}, 32))
	if err != nil {
		fatalf("%v", err)
	}
	return ca
}

func demoBrokerKey() *pki.KeyPair {
	k, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{82}, 32))
	if err != nil {
		fatalf("%v", err)
	}
	return k
}

func demoUEKey() *pki.KeyPair {
	k, err := pki.KeyPairFromSeed(bytes.Repeat([]byte{83}, 32))
	if err != nil {
		fatalf("%v", err)
	}
	return k
}

const demoBrokerID = "broker.demo"

func main() {
	role := flag.String("role", "demo", "broker|btelco|ue|demo")
	listen := flag.String("listen", "127.0.0.1:0", "listen address (broker, btelco)")
	brokerAddr := flag.String("broker-addr", "127.0.0.1:7700", "brokerd address (btelco role)")
	btelcoAddr := flag.String("btelco-addr", "127.0.0.1:7800", "bTelco NAS address (ue role)")
	telcoID := flag.String("telco-id", "btelco-demo", "bTelco identity (btelco, ue roles)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. 127.0.0.1:9090, :0 for ephemeral)")
	traceOut := flag.String("trace-out", "", "demo role: write the attach span tree to this file (.jsonl = JSON-lines, else Chrome trace)")
	verbose := flag.Bool("v", false, "enable debug-level logging (wire retries, redials)")
	flag.Parse()
	obs.Verbose(*verbose)

	debugging := false
	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr, nil)
		if err != nil {
			fatalf("debug server: %v", err)
		}
		defer dbg.Close()
		debugging = true
		obs.Infof(logSub, "debug endpoints at http://%s/ (metrics, vars, pprof)", dbg.Addr())
	}

	switch *role {
	case "broker":
		runBroker(*listen)
	case "btelco":
		runBTelco(*listen, *brokerAddr, *telcoID)
	case "ue":
		runUE(*btelcoAddr, *telcoID)
	case "demo":
		runDemo(debugging, *traceOut)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		os.Exit(2)
	}
}

func newDemoBroker() *broker.Brokerd {
	cfg := broker.DefaultConfig(demoBrokerID, demoBrokerKey(), demoCA().Public())
	b := broker.New(cfg)
	b.RegisterUser(demoUEKey().Public()) // the demo UE
	return b
}

func runBroker(listen string) {
	b := newDemoBroker()
	srv, err := broker.Serve(b, listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	obs.Infof(logSub, "brokerd %s listening on %s", b.ID(), srv.Addr())
	waitForInterrupt()
}

func runBTelco(listen, brokerAddr, telcoID string) {
	ca := demoCA()
	key, err := pki.GenerateKeyPair()
	if err != nil {
		fatalf("%v", err)
	}
	cert := ca.Issue(telcoID, "btelco", key.Public(), time.Now().Add(-time.Minute), time.Now().Add(365*24*time.Hour))
	telco := &sap.TelcoState{
		IDT: telcoID, Key: key, Cert: cert,
		Terms: sap.ServiceTerms{Cap: qos.DefaultCapability(), PricePerGB: 2.0},
	}
	agw := epc.NewAGW(epc.AGWConfig{
		Telco:   telco,
		Brokers: dialDirectory{brokerAddr: brokerAddr},
	})
	srv, err := epc.ServeNAS(agw, listen)
	if err != nil {
		fatalf("%v", err)
	}
	defer srv.Close()
	obs.Infof(logSub, "bTelco %s: NAS on %s, broker at %s", telcoID, srv.Addr(), brokerAddr)
	waitForInterrupt()
}

// dialDirectory resolves any broker ID to the configured brokerd address
// (the demo trusts the demo broker key).
type dialDirectory struct{ brokerAddr string }

func (d dialDirectory) Lookup(idB string) (epc.BrokerClient, pki.PublicIdentity, error) {
	if idB != demoBrokerID {
		return nil, pki.PublicIdentity{}, fmt.Errorf("unknown broker %q", idB)
	}
	c, err := broker.DialClient(d.brokerAddr)
	if err != nil {
		return nil, pki.PublicIdentity{}, err
	}
	return c, demoBrokerKey().Public(), nil
}

func runUE(btelcoAddr, telcoID string) {
	key := demoUEKey()
	sim := &sap.UEState{
		IDU:       key.Public().Digest(),
		IDB:       demoBrokerID,
		Key:       key,
		BrokerPub: demoBrokerKey().Public(),
	}
	dev := ue.NewDevice("demo-ue", nil, sim)
	client, err := wire.Dial(btelcoAddr)
	if err != nil {
		fatalf("%v", err)
	}
	defer client.Close()
	tx := func(envelope []byte) ([]byte, error) {
		_, reply, err := client.Call(wire.TypeNAS, epc.EncodeNASCall("demo-ue", envelope))
		return reply, err
	}
	a, err := dev.AttachSAP(tx, telcoID)
	if err != nil {
		fatalf("attach: %v", err)
	}
	obs.Infof(logSub, "attached: session=%d ip=%s bearer=%d qci=%d dl=%d ul=%d",
		a.SessionID, a.IP, a.BearerID, a.QCI, a.DLAmbrBps, a.ULAmbrBps)
	if err := dev.Detach(tx); err != nil {
		fatalf("detach: %v", err)
	}
	obs.Infof(logSub, "detached cleanly")
}

func runDemo(stayUp bool, traceOut string) {
	// With -trace-out, the whole demo deployment is traced: the UE roots
	// a span, the context rides the NAS envelope and wire frames, and
	// every component's spans land in one parented tree.
	var tracer *obs.Tracer
	var ids *obs.SpanIDSource
	if traceOut != "" {
		tracer = obs.NewTracer(nil)
		ids = obs.NewSpanIDSource(1)
	}
	d, err := testbed.NewRealDeploymentTraced(tracer, ids)
	if err != nil {
		fatalf("%v", err)
	}
	defer d.Close()
	obs.Infof(logSub, "demo: brokerd=%s sdb=%s agw-nas=%s",
		d.BrokerSrv.Addr(), d.SDBSrv.Addr(), d.NASSrv.Addr())

	dev, tx, err := d.NewCellBricksUE()
	if err != nil {
		fatalf("%v", err)
	}
	if tracer != nil {
		dev.TraceAttach(tracer, ids, ids.NewTrace())
	}
	a, err := dev.AttachSAP(tx, d.TelcoID())
	if err != nil {
		fatalf("SAP attach: %v", err)
	}
	obs.Infof(logSub, "SAP attach ok: session=%d ip=%s", a.SessionID, a.IP)

	// Pass some traffic and settle one billing cycle.
	bearer := d.AGW.UserPlane().Lookup(a.IP)
	for i := 0; i < 100; i++ {
		if bearer.Process(time.Duration(i)*10*time.Millisecond, epc.Downlink, 1200) {
			dev.Meter.CountDL(1200)
		}
	}
	if err := d.UploadTelcoReport(a.SessionID, 30*time.Second); err != nil {
		fatalf("%v", err)
	}
	if err := d.UploadUEReport(dev, 30*time.Second); err != nil {
		fatalf("%v", err)
	}
	obs.Infof(logSub, "billing cycle ok: telco score %.2f, %d mismatches",
		d.Broker.TelcoScore(d.TelcoID()), len(d.Broker.Mismatches()))

	if err := dev.Detach(tx); err != nil {
		fatalf("%v", err)
	}
	obs.Infof(logSub, "detach ok")

	// And a legacy UE on the same core.
	ldev, ltx, err := d.NewLegacyUE("001015550001234")
	if err != nil {
		fatalf("%v", err)
	}
	la, err := ldev.AttachLegacy(ltx)
	if err != nil {
		fatalf("legacy attach: %v", err)
	}
	obs.Infof(logSub, "legacy attach ok: session=%d ip=%s", la.SessionID, la.IP)
	if err := ldev.Detach(ltx); err != nil {
		fatalf("%v", err)
	}
	obs.Infof(logSub, "demo complete")

	if tracer != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		if len(traceOut) > 6 && traceOut[len(traceOut)-6:] == ".jsonl" {
			err = tracer.WriteJSONL(f)
		} else {
			err = tracer.WriteChromeTrace(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatalf("trace: %v", err)
		}
		obs.Infof(logSub, "wrote %d trace events to %s", tracer.Len(), traceOut)
	}

	// With a debug server running, keep the demo's populated metrics
	// scrapeable until interrupted.
	if stayUp {
		obs.Infof(logSub, "debug endpoints still serving; ctrl-C to exit")
		waitForInterrupt()
	}
}

func waitForInterrupt() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	obs.Infof(logSub, "shutting down")
}

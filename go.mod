module cellbricks

go 1.22
